"""Append-only SQLite event store (WAL) for scheduler runs.

The store is the service's source of truth: every lifecycle transition
is appended as one row in the ``events`` table with a store-assigned
monotonic ``seq`` (an ``INTEGER PRIMARY KEY AUTOINCREMENT``), and replay
(:mod:`repro.service.replay`) folds those rows back into
:class:`~repro.cluster.records.RunResult` values.

Durability model
----------------
The connection runs ``journal_mode=WAL`` with ``synchronous=NORMAL``:
appends go to the write-ahead log and survive process crashes up to the
last committed transaction.  Appends are buffered — the store commits
every ``flush_every`` rows and on every explicit :meth:`flush` — so a
hard crash loses at most one uncommitted tail, never a committed prefix,
and never tears an individual event.  ``seq`` gaps cannot appear in what
a reader observes: readers see exactly the committed prefix, in order.

Snapshots
---------
``save_snapshot`` stores a folded-state checkpoint (JSON produced by
:meth:`repro.service.replay.RunFold.to_state`) keyed by the seq it
covers; :meth:`compact` then deletes the covered events.  Replay of a
compacted run starts from the snapshot and folds only the tail.

The store is thread-safe: one connection guarded by an ``RLock``
(appends come from the scheduler-bridge thread, reads from asyncio
executor threads).

Commit retry
------------
A concurrent reader holding the database (another process tailing the
log, a stuck backup) can surface as ``sqlite3.OperationalError:
database is locked`` even under WAL.  Every commit therefore runs
through :meth:`EventStore._commit`, which retries with exponential
backoff inside a bounded budget and raises the typed
:class:`StoreUnavailable` once the budget is exhausted — callers (the
HTTP edge maps it to 503) get a clean error instead of a raw sqlite
exception mid-append.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from typing import Any, Iterator, Mapping

from repro.core.errors import ConfigurationError, ReproError
from repro.service.models import LifecycleEvent, RunConfig, canonical_json


class StoreUnavailable(ReproError):
    """The event store could not commit within its retry budget."""

_SCHEMA = """
CREATE TABLE IF NOT EXISTS events (
    seq        INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id     TEXT    NOT NULL,
    kind       TEXT    NOT NULL,
    vtime      REAL    NOT NULL,
    wtime      REAL    NOT NULL,
    job_id     INTEGER,
    task_index INTEGER,
    worker_id  INTEGER,
    payload    TEXT    NOT NULL DEFAULT '{}'
);
CREATE INDEX IF NOT EXISTS idx_events_run ON events (run_id, seq);
CREATE TABLE IF NOT EXISTS runs (
    run_id    TEXT PRIMARY KEY,
    created_w REAL NOT NULL,
    config    TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS snapshots (
    run_id    TEXT PRIMARY KEY,
    upto_seq  INTEGER NOT NULL,
    created_w REAL    NOT NULL,
    state     TEXT    NOT NULL
);
"""


class EventStore:
    """Append-only event log over one SQLite database file."""

    #: Commit retry budget: attempts and base backoff (seconds, doubled
    #: per retry).  Five attempts at 0.01s base waits ~0.15s worst case.
    commit_retries: int = 5
    commit_backoff: float = 0.01

    def __init__(self, path: str, flush_every: int = 256) -> None:
        if flush_every < 1:
            raise ConfigurationError("flush_every must be >= 1")
        self.path = path
        self.flush_every = flush_every
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            path, check_same_thread=False, timeout=30.0
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        self._pending = 0
        self._appended = 0
        self._commits = 0
        self._commit_retries_used = 0
        self._write_seconds = 0.0
        self._closed = False

    def _commit(self) -> None:
        """Commit with bounded retry; raises :class:`StoreUnavailable`.

        Only ``database is locked`` / ``database is busy`` errors are
        retried — anything else (corruption, disk full) re-raises
        immediately.  Callers hold ``self._lock``.
        """
        delay = self.commit_backoff
        for attempt in range(self.commit_retries):
            try:
                self._conn.commit()
                self._commits += 1
                return
            except sqlite3.OperationalError as exc:
                message = str(exc).lower()
                if "locked" not in message and "busy" not in message:
                    raise
                self._commit_retries_used += 1
                if attempt == self.commit_retries - 1:
                    raise StoreUnavailable(
                        f"event store {self.path!r} still locked after "
                        f"{self.commit_retries} commit attempts: {exc}"
                    ) from exc
                time.sleep(delay)
                delay *= 2

    # -- write path ------------------------------------------------------
    def append(self, event: LifecycleEvent) -> int:
        """Append one event; returns its store-assigned ``seq``.

        The row may sit in an uncommitted transaction until the next
        batch boundary or :meth:`flush`; the returned seq is final either
        way (SQLite allocates it at insert time).
        """
        with self._lock:
            started = time.perf_counter()
            cursor = self._conn.execute(
                "INSERT INTO events "
                "(run_id, kind, vtime, wtime, job_id, task_index, worker_id,"
                " payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    event.run_id,
                    event.kind,
                    event.vtime,
                    event.wtime,
                    event.job_id,
                    event.task_index,
                    event.worker_id,
                    canonical_json(dict(event.payload)),
                ),
            )
            seq = cursor.lastrowid
            assert seq is not None
            event.seq = seq
            self._pending += 1
            self._appended += 1
            if self._pending >= self.flush_every:
                self._commit()
                self._pending = 0
            self._write_seconds += time.perf_counter() - started
            return seq

    def flush(self) -> None:
        """Commit any buffered appends (makes them crash-durable)."""
        with self._lock:
            if self._pending:
                started = time.perf_counter()
                self._commit()
                self._pending = 0
                self._write_seconds += time.perf_counter() - started

    def register_run(self, config: RunConfig, created_w: float) -> None:
        """Record a run's configuration (idempotent on the run id)."""
        with self._lock:
            self._conn.execute(
                "INSERT OR IGNORE INTO runs (run_id, created_w, config) "
                "VALUES (?, ?, ?)",
                (config.run_id, created_w, canonical_json(config.to_json())),
            )
            self._commit()

    # -- read path -------------------------------------------------------
    def events(
        self, run_id: str | None = None, after_seq: int = 0
    ) -> Iterator[LifecycleEvent]:
        """Committed events in seq order, optionally one run's tail.

        Flushes first so a same-process reader always sees every append
        that happened before the call.
        """
        self.flush()
        with self._lock:
            if run_id is None:
                rows = self._conn.execute(
                    "SELECT seq, run_id, kind, vtime, wtime, job_id, "
                    "task_index, worker_id, payload FROM events "
                    "WHERE seq > ? ORDER BY seq",
                    (after_seq,),
                ).fetchall()
            else:
                rows = self._conn.execute(
                    "SELECT seq, run_id, kind, vtime, wtime, job_id, "
                    "task_index, worker_id, payload FROM events "
                    "WHERE run_id = ? AND seq > ? ORDER BY seq",
                    (run_id, after_seq),
                ).fetchall()
        for row in rows:
            yield LifecycleEvent(
                seq=row[0],
                run_id=row[1],
                kind=row[2],
                vtime=row[3],
                wtime=row[4],
                job_id=row[5],
                task_index=row[6],
                worker_id=row[7],
                payload=json.loads(row[8]),
            )

    def event_count(self, run_id: str | None = None) -> int:
        self.flush()
        with self._lock:
            if run_id is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM events"
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM events WHERE run_id = ?", (run_id,)
                ).fetchone()
        count: int = row[0]
        return count

    def run_configs(self) -> dict[str, RunConfig]:
        """Every registered run's configuration, keyed by run id."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT run_id, config FROM runs ORDER BY created_w"
            ).fetchall()
        return {
            row[0]: RunConfig.from_json(json.loads(row[1])) for row in rows
        }

    # -- snapshots / compaction ------------------------------------------
    def save_snapshot(
        self, run_id: str, upto_seq: int, state: Mapping[str, Any],
        created_w: float,
    ) -> None:
        """Store (replace) a folded-state checkpoint covering ``upto_seq``."""
        with self._lock:
            self.flush()
            self._conn.execute(
                "INSERT OR REPLACE INTO snapshots "
                "(run_id, upto_seq, created_w, state) VALUES (?, ?, ?, ?)",
                (run_id, upto_seq, created_w, canonical_json(dict(state))),
            )
            self._commit()

    def latest_snapshot(
        self, run_id: str
    ) -> tuple[int, dict[str, Any]] | None:
        """The run's checkpoint as ``(upto_seq, state)``, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT upto_seq, state FROM snapshots WHERE run_id = ?",
                (run_id,),
            ).fetchone()
        if row is None:
            return None
        return int(row[0]), json.loads(row[1])

    def compact(self, run_id: str) -> int:
        """Delete the run's events covered by its snapshot; returns count.

        Without a snapshot this is a no-op — compaction never discards
        state that replay could not reconstruct.
        """
        snapshot = self.latest_snapshot(run_id)
        if snapshot is None:
            return 0
        upto_seq, _ = snapshot
        with self._lock:
            self.flush()
            cursor = self._conn.execute(
                "DELETE FROM events WHERE run_id = ? AND seq <= ?",
                (run_id, upto_seq),
            )
            self._commit()
            return cursor.rowcount

    # -- lifecycle / stats -----------------------------------------------
    def stats(self) -> dict[str, float]:
        """Write-path counters for the benchmark harness."""
        with self._lock:
            return {
                "events_appended": float(self._appended),
                "commits": float(self._commits),
                "commit_retries": float(self._commit_retries_used),
                "write_seconds": self._write_seconds,
            }

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self.flush()
            self._conn.close()
            self._closed = True

    def __enter__(self) -> "EventStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
