"""Service load harness (``python -m repro.service.bench``).

Boots a whole service in-process (event store, scheduler bridges, the
NDJSON socket listener) and measures the three numbers that matter for a
serving scheduler, writing them to ``BENCH_service.json`` at the repo
root next to ``BENCH_core.json``:

* **sustained jobs/sec** — a closed-loop flood: ``clients`` concurrent
  socket connections each stream submissions back-to-back (next job sent
  when the previous acknowledgment arrives), alternating between two
  registry policies, until ``jobs`` jobs are accepted and drained.
* **scheduling latency p50/p99** — an open-loop paced phase: jobs
  submitted at a fixed gap, latencies computed *from the event log*
  (first ``started`` wall time minus the submission's receipt wall time
  recorded in the ``submitted`` payload) — the same numbers a cold
  reader of the store would derive, not a privileged in-process view.
* **event-store write throughput** — events appended per second of
  cumulative write-path time, from the store's own counters.

The JSON keeps one section per mode (``quick``/``full``) and merges on
write.  ``--check`` gates jobs/sec and store writes/sec against the
committed section with a generous 3x factor: these are wall-clock
numbers from a shared CI box, so the gate is a tripwire for collapses
(an accidental fsync-per-event, a serialized bridge), not a perf
tracker.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.service.api import ServiceState
from repro.service.event_store import EventStore
from repro.service.models import (
    KIND_STARTED,
    KIND_SUBMITTED,
    ServiceConfig,
    canonical_json,
)
from repro.service.server import ServiceThread

#: Fail ``--check`` when a fresh rate drops below committed/this.  Looser
#: than the core bench's 1.5x on purpose: every number here includes
#: socket round trips and thread scheduling on a noisy CI box.
REGRESSION_FACTOR = 3.0

#: Virtual seconds per wall second during the benchmark.  High enough
#: that virtual task execution never backpressures the submission path —
#: the benchmark measures the service machinery, not the simulated
#: cluster's capacity.
TIME_SCALE = 50.0


def default_output() -> Path:
    root = Path(__file__).resolve().parents[3]
    if (root / "benchmarks").is_dir():
        return root / "BENCH_service.json"
    return Path.cwd() / "BENCH_service.json"


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _job_line(
    rng: random.Random, policy: str, n_workers: int, seed: int = 0
) -> str:
    tasks = [
        round(rng.uniform(0.01, 0.05), 6) for _ in range(rng.randint(1, 3))
    ]
    return (
        canonical_json(
            {
                "policy": policy,
                "n_workers": n_workers,
                "seed": seed,
                "tasks": tasks,
            }
        )
        + "\n"
    )


def _stream_lines(host: str, port: int, lines: list[str]) -> list[str]:
    """One closed-loop client: send a line, await the ack, repeat."""
    run_ids: list[str] = []
    with socket.create_connection((host, port)) as sock:
        handle = sock.makefile("rw", encoding="utf-8", newline="\n")
        for line in lines:
            handle.write(line)
            handle.flush()
            response = json.loads(handle.readline())
            if not response.get("ok"):
                raise RuntimeError(f"submission rejected: {response}")
            run_ids.append(response["run_id"])
        handle.close()
    return run_ids


def _request(host: str, port: int, payload: dict[str, Any]) -> dict[str, Any]:
    with socket.create_connection((host, port)) as sock:
        handle = sock.makefile("rw", encoding="utf-8", newline="\n")
        handle.write(canonical_json(payload) + "\n")
        handle.flush()
        response: dict[str, Any] = json.loads(handle.readline())
        handle.close()
    if not response.get("ok"):
        raise RuntimeError(f"request failed: {response}")
    return response


def _latencies_from_log(store: EventStore, run_id: str) -> list[float]:
    """Scheduling latencies derived purely from the persisted events."""
    recv: dict[int, float] = {}
    latencies: list[float] = []
    for event in store.events(run_id):
        if event.kind == KIND_SUBMITTED and event.job_id is not None:
            recv[event.job_id] = float(event.payload["recv"])
        elif event.kind == KIND_STARTED and event.job_id in recv:
            latencies.append(event.wtime - recv.pop(event.job_id))
    return latencies


def run_bench(quick: bool = False) -> dict[str, Any]:
    n_flood = 400 if quick else 3000
    n_paced = 100 if quick else 500
    clients = 4 if quick else 8
    gap_s = 0.002
    n_workers = 50
    policies = ("hawk", "sparrow")
    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        store = EventStore(os.path.join(tmp, "bench_events.db"))
        state = ServiceState(store, time_scale=TIME_SCALE)
        config = ServiceConfig(db_path=store.path)
        rng = random.Random(0)
        with ServiceThread(state, config) as service:
            host = config.host
            port = service.socket_port
            # -- flood: closed-loop, `clients` concurrent connections --
            per_client: list[list[str]] = [[] for _ in range(clients)]
            for i in range(n_flood):
                per_client[i % clients].append(
                    _job_line(rng, policies[i % len(policies)], n_workers)
                )
            results: list[list[str]] = [[] for _ in range(clients)]
            errors: list[BaseException] = []

            def client(index: int) -> None:
                try:
                    results[index] = _stream_lines(
                        host, port, per_client[index]
                    )
                except BaseException as exc:  # surfaced after join
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,), daemon=True)
                for i in range(clients)
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise RuntimeError(f"flood client failed: {errors[0]}")
            run_ids = sorted({rid for chunk in results for rid in chunk})
            for run_id in run_ids:
                _request(
                    host, port, {"op": "drain", "run_id": run_id, "timeout": 120}
                )
            flood_wall = time.perf_counter() - start
            # -- replay equality while the bridges are still live --
            replay_match = all(
                _request(host, port, {"op": "replay-check", "run_id": rid})[
                    "match"
                ]
                for rid in run_ids
            )
            # -- paced: open-loop latency measurement --
            paced_policy = policies[0]
            paced_run_id = ""
            with socket.create_connection((host, port)) as sock:
                handle = sock.makefile("rw", encoding="utf-8", newline="\n")
                for _ in range(n_paced):
                    # seed=1 gives the paced phase its own run id, so the
                    # latency log is not diluted by flood submissions.
                    handle.write(
                        _job_line(rng, paced_policy, n_workers, seed=1)
                    )
                    handle.flush()
                    response = json.loads(handle.readline())
                    if not response.get("ok"):
                        raise RuntimeError(f"paced reject: {response}")
                    paced_run_id = response["run_id"]
                    time.sleep(gap_s)
                handle.close()
            _request(
                host, port,
                {"op": "drain", "run_id": paced_run_id, "timeout": 120},
            )
            latencies = _latencies_from_log(store, paced_run_id)
            store_stats = store.stats()
            total_events = store.event_count()
        store.close()
    write_seconds = store_stats["write_seconds"]
    return {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "time_scale": TIME_SCALE,
        "flood": {
            "jobs": n_flood,
            "clients": clients,
            "policies": list(policies),
            "runs": run_ids,
            "wall_s": round(flood_wall, 4),
            "jobs_per_sec": round(n_flood / flood_wall, 1),
        },
        "latency": {
            "jobs": n_paced,
            "gap_ms": gap_s * 1e3,
            "samples": len(latencies),
            "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
            "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
            "mean_ms": round(
                sum(latencies) / len(latencies) * 1e3 if latencies else 0.0, 3
            ),
        },
        "event_store": {
            "events": total_events,
            "appended": int(store_stats["events_appended"]),
            "commits": int(store_stats["commits"]),
            "write_seconds": round(write_seconds, 4),
            "writes_per_sec": round(
                store_stats["events_appended"] / write_seconds
                if write_seconds > 0
                else 0.0
            ),
        },
        "replay_match": replay_match,
    }


def merge_into(path: Path, section: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Update one mode section of the JSON file, preserving the rest."""
    data: dict[str, Any] = {}
    if path.is_file():
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
    data.setdefault("schema", 1)
    data.setdefault(
        "workload",
        "in-process service: NDJSON flood (hawk + sparrow) and a paced "
        "latency phase",
    )
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def check_regression(
    baseline_path: Path, section: str, fresh: dict[str, Any]
) -> list[str]:
    """Compare a fresh run to the committed baseline; return failures."""
    if not baseline_path.is_file():
        return [f"no baseline file at {baseline_path}"]
    baseline = json.loads(baseline_path.read_text()).get(section)
    if not baseline:
        return [f"baseline {baseline_path} has no '{section}' section"]
    failures = []
    for label, path in (
        ("jobs/sec", ("flood", "jobs_per_sec")),
        ("store writes/sec", ("event_store", "writes_per_sec")),
    ):
        committed = float(baseline[path[0]][path[1]])
        measured = float(fresh[path[0]][path[1]])
        floor = committed / REGRESSION_FACTOR
        if measured < floor:
            failures.append(
                f"{label} regression: measured {measured} < floor "
                f"{floor:.0f} (committed {committed} / {REGRESSION_FACTOR})"
            )
    if not fresh.get("replay_match", False):
        failures.append("replay-check mismatch: live result != cold replay")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.bench",
        description="Measure scheduler-service throughput and latency.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small job counts (CI smoke); default is the full load",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "JSON file to merge results into "
            "(default: repo-root BENCH_service.json)"
        ),
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print results without touching the output file",
    )
    parser.add_argument(
        "--check",
        type=Path,
        nargs="?",
        const=None,
        default=False,
        metavar="BASELINE",
        help=(
            "fail (exit 1) on a >3x throughput regression vs the committed "
            "baseline JSON (default: the output file itself)"
        ),
    )
    args = parser.parse_args(argv)
    output = args.output or default_output()
    section = "quick" if args.quick else "full"
    payload = run_bench(quick=args.quick)
    print(json.dumps({section: payload}, indent=2, sort_keys=True))
    if args.check is not False:
        baseline = args.check or output
        failures = check_regression(baseline, section, payload)
        if failures:
            for failure in failures:
                print(f"PERF CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            f"perf check ok: {payload['flood']['jobs_per_sec']} jobs/sec "
            f"(baseline {baseline})"
        )
    if not args.no_write:
        merge_into(output, section, payload)
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
