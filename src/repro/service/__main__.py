"""``python -m repro.service`` / ``repro-serve``: run the server."""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.core.errors import ConfigurationError
from repro.service.api import ServiceState
from repro.service.event_store import EventStore
from repro.service.models import ServiceConfig
from repro.service.server import ReproService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve registry scheduler policies over HTTP and an NDJSON "
            "socket, persisting every lifecycle event to SQLite."
        ),
    )
    parser.add_argument(
        "--db",
        default="service_events.db",
        help="SQLite event-store path (default: %(default)s)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--http-port",
        type=int,
        default=8176,
        help="HTTP port; 0 picks a free one (default: %(default)s)",
    )
    parser.add_argument(
        "--socket-port",
        type=int,
        default=8177,
        help="NDJSON socket port; 0 picks a free one (default: %(default)s)",
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=32,
        help="live run-configuration limit (default: %(default)s)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="virtual seconds per wall second (default: %(default)s)",
    )
    return parser


async def _serve(service: ReproService) -> None:
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)
    await service.start()
    for resumed in service.rehydrated["resumed"]:
        print(
            f"repro-serve: resumed run {resumed['run_id']} "
            f"({resumed['jobs_resumed']} interrupted job(s), "
            f"{resumed['jobs_already_done']} already complete)",
            flush=True,
        )
    print(
        f"repro-serve: http on {service.config.host}:{service.http_port}, "
        f"ndjson on {service.config.host}:{service.socket_port}, "
        f"store at {service.state.store.path}",
        flush=True,
    )
    await stop.wait()
    print("repro-serve: draining live runs ...", flush=True)
    await service.stop()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    store: EventStore | None = None
    try:
        config = ServiceConfig(
            db_path=args.db,
            host=args.host,
            http_port=args.http_port,
            socket_port=args.socket_port,
            max_runs=args.max_runs,
        )
        store = EventStore(config.db_path)
        state = ServiceState(
            store, max_runs=config.max_runs, time_scale=args.time_scale
        )
        asyncio.run(_serve(ReproService(state, config)))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - signal path
        return 130
    finally:
        if store is not None:
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
