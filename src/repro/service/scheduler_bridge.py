"""Async-to-simulation bridge: drive a registry policy in real time.

The simulator's engine (:class:`~repro.cluster.engine.ClusterEngine`) is
single-threaded and batch-oriented; the service is concurrent and
open-ended.  :class:`SchedulerBridge` joins the two with one background
thread per run that owns the engine outright:

* **Virtual time tracks the wall clock.**  The thread repeatedly
  advances ``sim.run(until=wall_elapsed * time_scale)``: a task with a
  200 ms duration *completes* 200 ms of wall time after it started
  (at ``time_scale=1``), but nothing ever sleeps per task — between
  events the thread blocks on the submission queue with a timeout sized
  by :attr:`~repro.core.simulation.Simulation.next_event_time`, so a
  100-worker virtual cluster costs one thread, not 100.
* **Submissions cross on a queue.**  :meth:`submit` (any thread)
  allocates the job id and enqueues; the bridge thread injects the job
  at virtual time ``max(wall_elapsed, sim.now)`` via
  :meth:`ClusterEngine.submit_job`, so every policy the registry can
  build — hawk, sparrow, split, plugins — serves unmodified.
* **Every transition is observed.**  :class:`ObservedEngine` hooks the
  engine's placement and worker state machine and emits one
  :class:`~repro.service.models.LifecycleEvent` per transition into the
  event store; the live result is *defined* as the same
  :class:`~repro.service.replay.RunFold` a cold replay performs, so the
  two cannot disagree.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from typing import TYPE_CHECKING, Any, Protocol, Sequence

from repro.cluster import Cluster, ClusterEngine, EngineConfig
from repro.cluster.job import Job, classify
from repro.cluster.records import RunResult
from repro.cluster.task import Task
from repro.cluster.worker import ProbeEntry, QueueEntry, TaskEntry, Worker
from repro.core.errors import ConfigurationError
from repro.schedulers import registry
from repro.schedulers.stealing import WorkStealing
from repro.service.event_store import EventStore
from repro.service.models import (
    KIND_COMPLETED,
    KIND_PROBED,
    KIND_QUEUED,
    KIND_STARTED,
    KIND_STOLEN,
    KIND_SUBMITTED,
    KIND_TASK_COMPLETED,
    LifecycleEvent,
    RunConfig,
    Submission,
)
from repro.service.replay import RunFold
from repro.workloads.spec import JobSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.schedulers.base import SchedulerPolicy
    from repro.schedulers.frontend import ProbeFrontend


class EmitFn(Protocol):
    """Callback receiving one lifecycle transition from the engine."""

    def __call__(
        self,
        kind: str,
        vtime: float,
        *,
        job_id: int | None = None,
        task_index: int | None = None,
        worker_id: int | None = None,
        payload: dict[str, Any] | None = None,
    ) -> None: ...


def _entry_job_id(entry: QueueEntry) -> int:
    if isinstance(entry, TaskEntry):
        return entry.task.job.job_id
    assert isinstance(entry, ProbeEntry)
    return entry.job.job_id


class ObservedEngine(ClusterEngine):
    """A :class:`ClusterEngine` that narrates its state transitions.

    Every override delegates the actual transition to the base class and
    only *observes* — the schedule produced is bit-identical to an
    unobserved engine's (the tests hold it to that by comparing against
    a plain batch run).
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: "SchedulerPolicy",
        config: EngineConfig,
        stealing: "WorkStealing | None" = None,
        *,
        emit: EmitFn,
    ) -> None:
        super().__init__(cluster, scheduler, config, stealing=stealing)
        self._emit = emit
        self._completed_jobs: set[int] = set()
        # place_probes/place_tasks may fan out through their singular
        # counterparts; the depth guard keeps one group to one event.
        self._group_depth = 0

    # -- placement -------------------------------------------------------
    def place_probe(
        self, worker_id: int, job: Job, frontend: "ProbeFrontend"
    ) -> None:
        if self._group_depth == 0:
            self._emit(
                KIND_PROBED,
                self.sim.now,
                job_id=job.job_id,
                worker_id=worker_id,
                payload={"workers": 1},
            )
        super().place_probe(worker_id, job, frontend)

    def place_probes(
        self, worker_ids: Sequence[int], job: Job, frontend: "ProbeFrontend"
    ) -> None:
        self._emit(
            KIND_PROBED,
            self.sim.now,
            job_id=job.job_id,
            payload={"workers": len(worker_ids)},
        )
        self._group_depth += 1
        try:
            super().place_probes(worker_ids, job, frontend)
        finally:
            self._group_depth -= 1

    def place_task(self, worker_id: int, task: Task) -> None:
        if self._group_depth == 0:
            self._emit(
                KIND_QUEUED,
                self.sim.now,
                job_id=task.job.job_id,
                task_index=task.index,
                worker_id=worker_id,
                payload={"tasks": 1},
            )
        super().place_task(worker_id, task)

    def place_tasks(self, assignments: Sequence[tuple[int, Task]]) -> None:
        if assignments:
            self._emit(
                KIND_QUEUED,
                self.sim.now,
                job_id=assignments[0][1].job.job_id,
                payload={"tasks": len(assignments)},
            )
        self._group_depth += 1
        try:
            super().place_tasks(assignments)
        finally:
            self._group_depth -= 1

    # -- worker state machine --------------------------------------------
    def _start_task(self, worker: Worker, task: Task, entry: QueueEntry) -> None:
        super()._start_task(worker, task, entry)
        self._emit(
            KIND_STARTED,
            self.sim.now,
            job_id=task.job.job_id,
            task_index=task.index,
            worker_id=worker.worker_id,
            payload={"stolen": task.was_stolen},
        )

    def _task_finished(self, worker: Worker, task: Task) -> None:
        job = task.job
        self._emit(
            KIND_TASK_COMPLETED,
            self.sim.now,
            job_id=job.job_id,
            task_index=task.index,
            worker_id=worker.worker_id,
        )
        super()._task_finished(worker, task)
        if (
            job.completion_time is not None
            and job.job_id not in self._completed_jobs
        ):
            self._completed_jobs.add(job.job_id)
            self._emit(
                KIND_COMPLETED,
                job.completion_time,
                job_id=job.job_id,
                payload={
                    "stolen_tasks": job.stolen_tasks,
                    "retried_tasks": job.retried_tasks,
                },
            )

    # -- stealing --------------------------------------------------------
    def transfer_stolen_entries(
        self, victim: Worker, thief: Worker, start: int, stop: int
    ) -> int:
        jobs = sorted(
            {
                _entry_job_id(entry)
                for entry in itertools.islice(victim.queue, start, stop)
            }
        )
        count = super().transfer_stolen_entries(victim, thief, start, stop)
        self._emit(
            KIND_STOLEN,
            self.sim.now,
            worker_id=thief.worker_id,
            payload={
                "victim": victim.worker_id,
                "entries": count,
                "jobs": jobs,
            },
        )
        return count


def build_observed_engine(config: RunConfig, emit: EmitFn) -> ObservedEngine:
    """Registry-driven engine construction for one service run.

    Mirrors :func:`repro.schedulers.registry.build_engine` (partition
    only when the policy declares it, stealing configured from the
    ``steal_cap`` param) but instantiates the observed subclass.
    """
    entry = registry.policy_entry(config.policy)
    partition_fraction = (
        config.short_partition_fraction if entry.uses_partition else 0.0
    )
    cluster = Cluster(
        config.n_workers, short_partition_fraction=partition_fraction
    )
    scheduler = entry.builder(config.params)
    stealing = (
        WorkStealing(cap=config.params["steal_cap"])
        if entry.uses_stealing
        else None
    )
    engine_config = EngineConfig(cutoff=config.cutoff, seed=config.seed)
    return ObservedEngine(
        cluster, scheduler, engine_config, stealing=stealing, emit=emit
    )


class SchedulerBridge:
    """One live run: a background thread owning an observed engine."""

    #: Longest the bridge thread blocks waiting for submissions when the
    #: simulation has nothing imminent (seconds).
    IDLE_POLL = 0.05

    def __init__(
        self,
        config: RunConfig,
        store: EventStore,
        time_scale: float = 1.0,
        idle_poll: float = IDLE_POLL,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(
                f"time_scale must be positive, got {time_scale}"
            )
        if idle_poll <= 0:
            raise ConfigurationError(
                f"idle_poll must be positive, got {idle_poll}"
            )
        self.config = config
        self.run_id = config.run_id
        self.store = store
        self.time_scale = time_scale
        self.idle_poll = idle_poll
        self.engine = build_observed_engine(config, self._emit)
        self._queue: queue.SimpleQueue[
            tuple[int, Submission, float] | None
        ] = queue.SimpleQueue()
        self._mutex = threading.RLock()
        self._fold = RunFold()
        self._latencies: list[float] = []
        self._recv_w: dict[int, float] = {}
        self._next_job_id = 0
        self._submitted = 0
        self._injected = 0
        self._all_done = threading.Event()
        self._all_done.set()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0
        store.register_run(config, created_w=time.time())

    # -- crash recovery ---------------------------------------------------
    def resume_from(self, fold: RunFold) -> int:
        """Adopt a replayed fold and queue its in-flight jobs again.

        Called before :meth:`start` when the service rehydrates a run
        from the event store after a crash.  The bridge continues the
        run's existing log: completed jobs keep their replayed records,
        and every pending job whose ``submitted`` event carried its task
        durations is re-submitted under its *original* job id — the
        fresh ``submitted`` event supersedes the interrupted one in the
        fold, so the live result and a cold replay of the log still
        agree by construction.  New job ids continue past everything the
        log has seen, keeping re-submission idempotent per job.  Pending
        jobs logged before task durations were recorded cannot be re-run
        and stay pending (they do not count toward completion).
        Returns the number of jobs queued for re-submission.
        """
        if self._thread is not None:
            raise ConfigurationError(
                f"bridge for run {self.run_id} already started; resume "
                "must happen before start"
            )
        resubmit: list[tuple[int, Submission]] = []
        max_job_id = -1
        for record in fold.records:
            max_job_id = max(max_job_id, record.job_id)
        for job_id, (_, payload) in sorted(fold.pending.items()):
            max_job_id = max(max_job_id, job_id)
            tasks = payload.get("tasks")
            if not tasks:
                continue
            estimate = payload.get("estimate")
            resubmit.append(
                (
                    job_id,
                    Submission(
                        tasks=tuple(float(d) for d in tasks),
                        tenant=str(payload.get("tenant", "default")),
                        estimate=(
                            float(estimate) if estimate is not None else None
                        ),
                    ),
                )
            )
        with self._mutex:
            self._fold = fold
            self._next_job_id = max_job_id + 1
            self._injected = fold.jobs_completed
            self._submitted = fold.jobs_completed + len(resubmit)
            if resubmit:
                self._all_done.clear()
        for job_id, submission in resubmit:
            self._queue.put((job_id, submission, 0.0))
        return len(resubmit)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SchedulerBridge":
        if self._thread is not None:
            raise ConfigurationError(
                f"bridge for run {self.run_id} already started"
            )
        self._t0 = time.monotonic()
        self._thread = threading.Thread(
            target=self._run, name=f"bridge-{self.run_id}", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float | None = None) -> bool:
        """Finish in-flight jobs, flush the store, join the thread.

        Graceful by construction: the thread only exits once every
        submitted job has completed.  Returns ``False`` if the join
        timed out (the daemon thread keeps draining in the background).
        """
        thread = self._thread
        if thread is None:
            return True
        self._queue.put(None)
        thread.join(timeout)
        return not thread.is_alive()

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every submitted job has completed (or timeout)."""
        return self._all_done.wait(timeout)

    # -- submission (any thread) -----------------------------------------
    def submit(self, submission: Submission) -> int:
        """Enqueue one job; returns its run-scoped job id immediately."""
        if self._thread is None:
            raise ConfigurationError(
                f"bridge for run {self.run_id} is not started"
            )
        recv_w = self._wall()
        with self._mutex:
            job_id = self._next_job_id
            self._next_job_id += 1
            self._submitted += 1
            self._all_done.clear()
        self._queue.put((job_id, submission, recv_w))
        return job_id

    # -- results (any thread) --------------------------------------------
    def result(self) -> RunResult:
        """Point-in-time result folded from the events emitted so far."""
        with self._mutex:
            return self._fold.result(self.config)

    def stats(self) -> dict[str, int]:
        with self._mutex:
            return {
                "submitted": self._submitted,
                "injected": self._injected,
                "completed": self._fold.jobs_completed,
                "in_flight": self._submitted - self._fold.jobs_completed,
            }

    def latencies(self) -> tuple[float, ...]:
        """Per-job scheduling latencies (submit receipt → first task start,
        wall seconds), in completion-of-start order."""
        with self._mutex:
            return tuple(self._latencies)

    def checkpoint(self, compact: bool = False) -> int:
        """Snapshot the fold into the store; optionally drop covered events.

        Returns the number of events compacted away (0 without
        ``compact``).
        """
        with self._mutex:
            state = self._fold.to_state()
            upto_seq = self._fold.last_seq
        self.store.save_snapshot(
            self.run_id, upto_seq, state, created_w=time.time()
        )
        return self.store.compact(self.run_id) if compact else 0

    # -- bridge thread ---------------------------------------------------
    def _wall(self) -> float:
        return time.monotonic() - self._t0

    def _run(self) -> None:
        engine = self.engine
        sim = engine.sim
        stopping = False
        while True:
            now_v = self._wall() * self.time_scale
            if now_v > sim.now:
                sim.run(until=now_v)
            with self._mutex:
                done = (
                    self._injected == self._submitted
                    and self._fold.jobs_completed == self._submitted
                )
            if done:
                self.store.flush()
                self._all_done.set()
                if stopping:
                    return
            timeout = self.idle_poll
            next_v = sim.next_event_time
            if next_v is not None:
                wait_w = (next_v - now_v) / self.time_scale
                timeout = min(max(wait_w, 0.0), self.idle_poll)
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                continue
            batch = [item]
            while True:
                try:
                    batch.append(self._queue.get_nowait())
                except queue.Empty:
                    break
            for entry in batch:
                if entry is None:
                    stopping = True
                else:
                    self._inject(*entry)

    def _inject(self, job_id: int, submission: Submission, recv_w: float) -> None:
        engine = self.engine
        vtime = max(self._wall() * self.time_scale, engine.sim.now)
        spec = JobSpec(
            job_id=job_id, submit_time=vtime, task_durations=submission.tasks
        )
        estimate = (
            submission.estimate
            if submission.estimate is not None
            else engine.estimate(spec)
        )
        payload: dict[str, Any] = {
            "tenant": submission.tenant,
            # Individual durations make the submission replayable: crash
            # recovery rebuilds the Submission from this event alone.
            "tasks": list(submission.tasks),
            "num_tasks": spec.num_tasks,
            "true_mean": spec.mean_task_duration,
            "estimate": estimate,
            "task_seconds": spec.task_seconds,
            "scheduled_class": classify(estimate, self.config.cutoff).value,
            "true_class": classify(
                spec.mean_task_duration, self.config.cutoff
            ).value,
            "recv": recv_w,
        }
        self._emit(KIND_SUBMITTED, vtime, job_id=job_id, payload=payload)
        engine.submit_job(spec, estimated_task_duration=estimate)
        with self._mutex:
            self._injected += 1

    def _emit(
        self,
        kind: str,
        vtime: float,
        *,
        job_id: int | None = None,
        task_index: int | None = None,
        worker_id: int | None = None,
        payload: dict[str, Any] | None = None,
    ) -> None:
        event = LifecycleEvent(
            run_id=self.run_id,
            kind=kind,
            vtime=vtime,
            job_id=job_id,
            task_index=task_index,
            worker_id=worker_id,
            payload=payload or {},
            wtime=self._wall(),
        )
        with self._mutex:
            self.store.append(event)
            self._fold.apply(event)
            if kind == KIND_SUBMITTED and job_id is not None:
                self._recv_w[job_id] = float(event.payload["recv"])
            elif kind == KIND_STARTED and job_id in self._recv_w:
                self._latencies.append(event.wtime - self._recv_w.pop(job_id))
