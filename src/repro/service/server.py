"""Asyncio transports: a stdlib HTTP/1.1 endpoint and an NDJSON socket.

No web framework is available in the container, so the HTTP side is a
deliberately small hand-rolled HTTP/1.1 server on ``asyncio.start_server``
— request line, headers, ``Content-Length`` body, keep-alive, JSON in
and out.  The newline-delimited-JSON socket is the fallback (and the
faster path for load generation): one JSON object per line in, one
``{"ok": ...}`` object per line out, over a plain TCP connection.

Both transports delegate every operation to
:class:`~repro.service.api.ServiceState`; handlers run the blocking
parts (SQLite reads, drains) in the default executor so the event loop
keeps accepting connections while a drain waits.

Routes
------
====== ============================ ======================================
GET    ``/healthz``                 liveness + store counters
GET    ``/runs``                    all runs (live and historical)
GET    ``/runs/{id}``               one run's config, stats, event count
GET    ``/runs/{id}/result``        folded result (``?drain=0`` to skip)
POST   ``/jobs``                    submit one job (202 + run/job ids)
POST   ``/runs/{id}/drain``         block until in-flight jobs finish
POST   ``/runs/{id}/replay-check``  cold replay vs live equality
POST   ``/runs/{id}/checkpoint``    snapshot (``?compact=1`` to compact)
====== ============================ ======================================

NDJSON ops mirror the routes: ``submit`` (default), ``health``,
``runs``, ``result``, ``drain``, ``replay-check``, ``checkpoint``.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.core.errors import ConfigurationError
from repro.service.api import DrainTimeout, ServiceState
from repro.service.event_store import StoreUnavailable
from repro.service.models import ServiceConfig

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _LineTooLong(Exception):
    """A readline exceeded the stream buffer limit (mapped to 413)."""


def _flag(query: dict[str, list[str]], name: str, default: bool) -> bool:
    values = query.get(name)
    if not values:
        return default
    return values[-1] not in ("0", "false", "no")


class ReproService:
    """Both listeners over one :class:`ServiceState`."""

    def __init__(self, state: ServiceState, config: ServiceConfig) -> None:
        self.state = state
        self.config = config
        self.http_port = 0
        self.socket_port = 0
        self._http_server: asyncio.Server | None = None
        self._socket_server: asyncio.Server | None = None
        # Open client connections; closed explicitly on stop() so idle
        # keep-alive handlers exit before the event loop tears down
        # (instead of being cancelled mid-readline).
        self._writers: set[asyncio.StreamWriter] = set()

        #: Summary of the startup rehydration pass (see
        #: :meth:`ServiceState.rehydrate`).
        self.rehydrated: dict[str, Any] = {"resumed": [], "failed": []}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        # Resume interrupted runs before accepting traffic, so a client
        # re-submitting after a crash lands on the resumed bridge.
        loop = asyncio.get_running_loop()
        self.rehydrated = await loop.run_in_executor(
            None, self.state.rehydrate
        )
        limit = self.config.max_body_bytes + 1024
        self._http_server = await asyncio.start_server(
            self._handle_http,
            self.config.host,
            self.config.http_port,
            limit=limit,
        )
        self._socket_server = await asyncio.start_server(
            self._handle_ndjson,
            self.config.host,
            self.config.socket_port,
            limit=limit,
        )
        # Ephemeral-port discovery: port 0 binds to a free port and the
        # bound socket is the only place the real number exists.
        self.http_port = self._http_server.sockets[0].getsockname()[1]
        self.socket_port = self._socket_server.sockets[0].getsockname()[1]

    async def stop(self) -> bool:
        """Close the listeners and drain the state.

        Returns ``False`` when shutdown was dirty — some bridge thread
        outlived the drain budget (the leaked runs are logged by
        :meth:`ServiceState.close` and recoverable via rehydration).
        """
        for server in (self._http_server, self._socket_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        self._http_server = None
        self._socket_server = None
        for writer in list(self._writers):
            writer.close()
        for _ in range(200):
            if not self._writers:
                break
            await asyncio.sleep(0.01)
        loop = asyncio.get_running_loop()
        clean: bool = await loop.run_in_executor(
            None,
            functools.partial(
                self.state.close, timeout=self.config.drain_timeout
            ),
        )
        return clean

    # -- HTTP ------------------------------------------------------------
    @staticmethod
    async def _readline(reader: asyncio.StreamReader) -> bytes:
        """One line off the stream; over-limit lines raise typed.

        ``StreamReader.readline`` reports a line longer than the stream
        buffer limit as a bare ``ValueError`` — left alone it would kill
        the handler without a response.  Re-raising as
        :class:`_LineTooLong` lets the request loop answer a clean 413.
        """
        try:
            return await reader.readline()
        except ValueError as exc:
            raise _LineTooLong(str(exc)) from exc

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                request_line = await self._readline(reader)
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"},
                        keep=False,
                    )
                    break
                method, target, version = parts
                headers: dict[str, str] = {}
                while True:
                    line = await self._readline(reader)
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._respond(
                        writer, 400, {"error": "bad Content-Length"},
                        keep=False,
                    )
                    break
                if length > self.config.max_body_bytes:
                    await self._respond(
                        writer, 413, {"error": "body too large"}, keep=False
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                keep = (
                    headers.get(
                        "connection",
                        "keep-alive" if version == "HTTP/1.1" else "close",
                    ).lower()
                    != "close"
                )
                status, payload = await self._dispatch(method, target, body)
                await self._respond(writer, status, payload, keep=keep)
                if not keep:
                    break
        except _LineTooLong:
            # An oversized request/header line: the rest of the stream
            # is unframed garbage, so answer once and drop the
            # connection instead of dying without a response.
            try:
                await self._respond(
                    writer,
                    413,
                    {"error": "request line exceeds the size limit"},
                    keep=False,
                )
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        keep: bool,
    ) -> None:
        body = json.dumps(payload).encode()
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _dispatch(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        url = urlsplit(target)
        path = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            call = self._route(method, path, query, body)
            if call is None:
                return 404, {"error": f"no route for {method} {url.path}"}
            status, func = call
            loop = asyncio.get_running_loop()
            payload = await loop.run_in_executor(None, func)
            return status, payload
        except ConfigurationError as exc:
            return 400, {"error": str(exc)}
        except DrainTimeout as exc:
            return 504, {"error": str(exc), "timeout": True}
        except StoreUnavailable as exc:
            return 503, {"error": str(exc)}
        except json.JSONDecodeError as exc:
            return 400, {"error": f"bad JSON body: {exc}"}
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"bad request: {exc}"}

    def _route(
        self,
        method: str,
        path: list[str],
        query: dict[str, list[str]],
        body: bytes,
    ) -> tuple[int, Callable[[], dict[str, Any]]] | None:
        """Map one request to ``(status, thunk)``; ``None`` = 404."""
        state = self.state
        if method == "GET":
            if path == ["healthz"]:
                return 200, state.health
            if path == ["runs"]:
                return 200, state.runs
            if len(path) == 2 and path[0] == "runs":
                return 200, functools.partial(state.run_detail, path[1])
            if len(path) == 3 and path[0] == "runs" and path[2] == "result":
                return 200, functools.partial(
                    state.run_result,
                    path[1],
                    drain=_flag(query, "drain", True),
                    timeout=self.config.drain_timeout,
                )
            return None
        if method == "POST":
            if path == ["jobs"]:
                data = json.loads(body or b"{}")
                if not isinstance(data, dict):
                    raise ConfigurationError("body must be a JSON object")
                return 202, functools.partial(state.submit, data)
            if len(path) == 3 and path[0] == "runs":
                run_id, action = path[1], path[2]
                if action == "drain":
                    return 200, functools.partial(
                        state.run_result,
                        run_id,
                        drain=True,
                        timeout=self.config.drain_timeout,
                    )
                if action == "replay-check":
                    return 200, functools.partial(state.replay_check, run_id)
                if action == "checkpoint":
                    return 200, functools.partial(
                        state.checkpoint,
                        run_id,
                        compact=_flag(query, "compact", False),
                    )
            return None
        return 405, lambda: {"error": f"method {method} not allowed"}

    # -- NDJSON socket ---------------------------------------------------
    async def _handle_ndjson(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    response: dict[str, Any] = {
                        "ok": False,
                        "error": "line too long",
                    }
                    writer.write((json.dumps(response) + "\n").encode())
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._ndjson_op(line)
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
        except ConnectionError:  # pragma: no cover - client vanished
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass

    async def _ndjson_op(self, line: bytes) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                return {"ok": False, "error": "each line must be an object"}
            op = data.pop("op", "submit")
            state = self.state
            thunk: Callable[[], dict[str, Any]]
            if op == "submit":
                thunk = functools.partial(state.submit, data)
            elif op == "health":
                thunk = state.health
            elif op == "runs":
                thunk = state.runs
            elif op in ("result", "drain"):
                thunk = functools.partial(
                    state.run_result,
                    str(data["run_id"]),
                    drain=bool(data.get("drain", True)),
                    timeout=float(
                        data.get("timeout", self.config.drain_timeout)
                    ),
                )
            elif op == "replay-check":
                thunk = functools.partial(
                    state.replay_check, str(data["run_id"])
                )
            elif op == "checkpoint":
                thunk = functools.partial(
                    state.checkpoint,
                    str(data["run_id"]),
                    compact=bool(data.get("compact", False)),
                )
            else:
                return {"ok": False, "error": f"unknown op {op!r}"}
            payload = await loop.run_in_executor(None, thunk)
            return {"ok": True, **payload}
        except ConfigurationError as exc:
            return {"ok": False, "error": str(exc)}
        except DrainTimeout as exc:
            return {"ok": False, "error": str(exc), "timeout": True}
        except StoreUnavailable as exc:
            return {"ok": False, "error": str(exc), "unavailable": True}
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ) as exc:
            return {"ok": False, "error": f"bad request: {exc}"}


async def serve(
    service: ReproService, stop: "asyncio.Event | None" = None
) -> None:
    """Start the listeners and serve until ``stop`` is set."""
    await service.start()
    if stop is None:  # pragma: no cover - __main__ path installs one
        stop = asyncio.Event()
    await stop.wait()
    await service.stop()


class ServiceThread:
    """A whole service on a background event loop (tests, benchmarks).

    ``start()`` blocks until both ports are bound, so callers can read
    :attr:`http_port` / :attr:`socket_port` immediately after.
    """

    def __init__(self, state: ServiceState, config: ServiceConfig) -> None:
        self.service = ReproService(state, config)
        self._ready = threading.Event()
        self._failed: BaseException | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @property
    def http_port(self) -> int:
        return self.service.http_port

    @property
    def socket_port(self) -> int:
        return self.service.socket_port

    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise ConfigurationError("service thread already started")
        self._thread = threading.Thread(
            target=self._main, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise ConfigurationError("service failed to start within 30 s")
        if self._failed is not None:
            raise ConfigurationError(
                f"service failed to start: {self._failed}"
            )
        return self

    def stop(self, timeout: float = 60.0) -> bool:
        thread = self._thread
        if thread is None:
            return True
        loop, stop_event = self._loop, self._stop_event
        if loop is not None and stop_event is not None and loop.is_running():
            loop.call_soon_threadsafe(stop_event.set)
        thread.join(timeout)
        return not thread.is_alive()

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._failed = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        await self.service.start()
        self._ready.set()
        await self._stop_event.wait()
        await self.service.stop()
