"""Long-running scheduler service with an event-sourced run store.

The simulator (:mod:`repro.cluster`) replays a whole trace at once; the
threaded prototype (:mod:`repro.runtime`) replays one in real time with
real sleeps.  This package is the third leg the ROADMAP's north star
asks for: a *server*.  It accepts streaming job submissions over HTTP
and a newline-delimited-JSON socket, schedules them in real time against
a virtual cluster driven by any registered policy (the simulation clock
tracks the wall clock, so probing, queueing, stealing and completions
happen at honest times without burning a thread per node), and persists
every lifecycle transition — submitted, probed, queued, started, stolen,
task-completed, completed — to an append-only SQLite WAL event store
with monotonic sequence numbers.

Because the store is the source of truth, :func:`repro.service.replay.replay`
folds the log back into the same :class:`~repro.cluster.records.RunResult`
records the simulator produces: every metric in :mod:`repro.metrics`
works on served traffic, and a served run can be compared against its
simulated twin from the log alone, without re-running anything.

Entry points
------------
* ``repro-serve`` / ``python -m repro.service`` — run the server.
* ``python -m repro.service.bench`` — sustained-load benchmark writing
  ``BENCH_service.json`` (jobs/sec, scheduling-latency percentiles,
  event-store write throughput).
"""

from repro.service.api import DrainTimeout, ServiceState
from repro.service.event_store import EventStore, StoreUnavailable
from repro.service.models import (
    LifecycleEvent,
    RunConfig,
    ServiceConfig,
    Submission,
)
from repro.service.replay import RunFold, replay
from repro.service.scheduler_bridge import SchedulerBridge
from repro.service.server import ReproService, ServiceThread

__all__ = [
    "DrainTimeout",
    "EventStore",
    "LifecycleEvent",
    "ReproService",
    "RunConfig",
    "RunFold",
    "SchedulerBridge",
    "ServiceConfig",
    "ServiceState",
    "ServiceThread",
    "StoreUnavailable",
    "Submission",
    "replay",
]
